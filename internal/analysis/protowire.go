package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// protowireAnalyzer keeps the binary wire protocol structurally
// complete. The binary frame format (internal/proto/binary.go) pairs
// every field with a `tag<Name>` constant; a tag that is encoded but
// never decoded is silently dropped on the wire, one decoded but
// never encoded is dead weight that masks a missing encode arm, and a
// Message field without a tag constant quietly falls out of the
// binary protocol while still travelling over JSON. Three checks:
//
//  1. every `tag*` constant is used both outside a case clause (the
//     encode arm) and inside one (the decode arm);
//  2. Message struct fields and tag constants stay in bijection —
//     field Foo ⇔ const tagFoo (JSON-only fields carry an explicit
//     suppression with the reason they are excluded from the frame);
//  3. the decode switch has a default arm that acts (calls a failure
//     or skip handler), so an unknown tag from a newer peer cannot be
//     silently swallowed as an empty case.
var protowireAnalyzer = &Analyzer{
	Name:    "protowire",
	Doc:     "binary-frame tags have encode and decode arms; fields and tags stay in bijection",
	Applies: baseIn("proto", "protowire"),
	Run:     runProtowire,
}

func runProtowire(p *Pass) {
	info := p.Pkg.Info

	// Tag constants: package-level consts named tag<Upper...> of
	// integer type.
	type tagConst struct {
		obj  *types.Const
		decl *ast.Ident
	}
	tags := make(map[string]*tagConst)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isTagName(name.Name) {
						continue
					}
					c, ok := info.Defs[name].(*types.Const)
					if !ok || c.Type() == nil {
						continue
					}
					if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
						continue
					}
					tags[name.Name] = &tagConst{obj: c, decl: name}
				}
			}
		}
	}
	if len(tags) == 0 {
		return
	}

	// Classify every use of a tag constant: inside a case clause's
	// expression list = decode arm, anywhere else = encode arm. A
	// switch whose cases resolve to tag constants is a decode switch
	// and must have a default that does something.
	caseIdent := make(map[*ast.Ident]bool)
	encode := make(map[string]bool)
	decode := make(map[string]bool)
	p.inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		tagCases := 0
		var deflt *ast.CaseClause
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				deflt = cc
				continue
			}
			for _, e := range cc.List {
				ast.Inspect(e, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if c, ok := info.Uses[id].(*types.Const); ok && isTagName(id.Name) && tags[id.Name] != nil && tags[id.Name].obj == c {
							caseIdent[id] = true
							tagCases++
						}
					}
					return true
				})
			}
		}
		if tagCases >= 2 {
			switch {
			case deflt == nil:
				p.Reportf(sw.Pos(), "decode switch over wire tags has no default: an unknown tag from a newer peer would fall through silently")
			case !bodyActs(deflt.Body):
				p.Reportf(deflt.Pos(), "decode switch default is inert: unknown wire tags must be failed or explicitly skipped, not swallowed")
			}
		}
		return true
	})
	p.inspect(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		tc := tags[id.Name]
		if tc == nil {
			return true
		}
		if c, ok := info.Uses[id].(*types.Const); !ok || c != tc.obj {
			return true
		}
		if caseIdent[id] {
			decode[id.Name] = true
		} else {
			encode[id.Name] = true
		}
		return true
	})

	// The Message struct, for the field ⇔ tag bijection.
	var msgFields []*ast.Ident
	p.inspect(func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "Message" {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			msgFields = append(msgFields, f.Names...)
		}
		return true
	})

	names := make([]string, 0, len(tags))
	for name := range tags {
		names = append(names, name)
	}
	sort.Strings(names)
	fieldSet := make(map[string]bool, len(msgFields))
	for _, f := range msgFields {
		fieldSet[f.Name] = true
	}
	for _, name := range names {
		tc := tags[name]
		if !encode[name] {
			p.Reportf(tc.decl.Pos(), "wire tag %s has no encode arm: the field is never written to binary frames", name)
		}
		if !decode[name] {
			p.Reportf(tc.decl.Pos(), "wire tag %s has no decode arm: peers sending it are silently ignored", name)
		}
		if len(msgFields) > 0 && !fieldSet[strings.TrimPrefix(name, "tag")] {
			p.Reportf(tc.decl.Pos(), "wire tag %s has no matching Message field %s", name, strings.TrimPrefix(name, "tag"))
		}
	}
	for _, f := range msgFields {
		if tags["tag"+f.Name] == nil {
			p.Reportf(f.Pos(), "Message field %s has no wire tag (const tag%s): it travels over JSON but is dropped by the binary protocol", f.Name, f.Name)
		}
	}
}

// isTagName matches the tag-constant naming convention: "tag"
// followed by an exported-style name.
func isTagName(name string) bool {
	return len(name) > 3 && strings.HasPrefix(name, "tag") &&
		name[3] >= 'A' && name[3] <= 'Z'
}

// bodyActs reports whether a default clause's body performs an
// action (a call — d.fail, a skip helper, panic) rather than sitting
// empty or only assigning.
func bodyActs(body []ast.Stmt) bool {
	acts := false
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				acts = true
			}
			return !acts
		})
	}
	return acts
}

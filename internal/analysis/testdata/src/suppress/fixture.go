// Package suppress exercises the //harmonyvet:ignore directive.
package suppress

import "fmt"

// Suppressed: the justified directive above the loop covers the
// finding.
func Suppressed(m map[string]int) {
	//harmonyvet:ignore maporder fixture: printing in arbitrary order is this helper's documented contract
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func Unsuppressed(m map[string]int) {
	for k, v := range m { // want `calls Println`
		fmt.Println(k, v)
	}
}

// Package proto exercises the errdrop analyzer: its directory base
// name makes the analyzer treat it like the real protocol package.
package proto

import "io"

func Bad(w io.Writer, c io.Closer, data []byte) {
	w.Write(data)   // want `error result from w\.Write is discarded`
	defer c.Close() // want `error result of deferred call from c\.Close is discarded`
}

func Good(w io.Writer, c io.Closer, data []byte) error {
	if _, err := w.Write(data); err != nil {
		return err
	}
	_ = c.Close() // explicit, greppable discard: allowed
	return nil
}

// NoError calls drop nothing.
func NoError(n int) int { return n + 1 }

func CallsNoError() {
	NoError(1)
}

// Package lockcheck exercises the mutex-hygiene analyzer.
package lockcheck

import "sync"

// Guarded is a struct whose mutex must never be copied.
type Guarded struct {
	mu sync.Mutex
	n  int
}

func EarlyReturn(g *Guarded, fail bool) int {
	g.mu.Lock()
	if fail {
		return -1 // want `return while g\.mu is locked`
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func NeverUnlocked(g *Guarded) {
	g.mu.Lock() // want `locked but never unlocked`
	g.n++
}

func Deferred(g *Guarded, fail bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fail {
		return -1
	}
	return g.n
}

// CondStyle unlocks on the early path before returning, the pattern
// the simulator's rendezvous code uses; it must not be flagged.
func CondStyle(g *Guarded, fail bool) int {
	g.mu.Lock()
	if fail {
		g.mu.Unlock()
		return -1
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func ByValue(g Guarded) int { // want `parameter of ByValue passes a struct containing a sync mutex by value`
	return g.n
}

func (g Guarded) Racy() int { // want `receiver of Racy passes a struct containing a sync mutex by value`
	return g.n
}

func ByPointer(g *Guarded) int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

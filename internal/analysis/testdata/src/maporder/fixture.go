// Package maporder exercises the map-iteration-order analyzer.
package maporder

import (
	"fmt"
	"sort"
)

func FloatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates into a float`
		sum += v
	}
	return sum
}

func AppendValues(m map[int]int) []int {
	var out []int
	for _, v := range m { // want `appends map values`
		out = append(out, v)
	}
	return out
}

func PrintLoop(m map[string]int) {
	for k, v := range m { // want `calls Println`
		fmt.Println(k, v)
	}
}

// SortedKeys is the sanctioned idiom: collect the keys, sort them,
// then do the order-sensitive work over the sorted slice.
func SortedKeys(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// IntCount is order-independent: integer addition commutes exactly.
func IntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// CopyMap is order-independent: distinct keys land in distinct slots.
func CopyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Package server is the wallclock negative fixture: the protocol
// packages legitimately deal in wall time through injectable clocks,
// so the analyzer must stay silent here.
package server

import "time"

// Now reads the wall clock, which is allowed in this package.
func Now() time.Time { return time.Now() }

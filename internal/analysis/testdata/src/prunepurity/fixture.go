// Package prunepurity exercises the prunepurity analyzer: a value
// produced by a surrogate's Predict may drive pruning decisions and
// flow to the strategy, but must never reach an evaluation cache,
// best-result state, or run accounting.
package prunepurity

type model struct{ w []float64 }

// Predict is the taint source: the surrogate's predicted score.
func (m *model) Predict(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += m.w[i%len(m.w)] * v
	}
	return s
}

type evalCache struct{ m map[string]float64 }

func (c *evalCache) Store(k string, v float64) { c.m[k] = v }

type Result struct {
	BestValue float64
	Evals     int
}

type runStats struct{ TuningCost float64 }

type trial struct {
	predicted float64
	pruned    bool
}

// A prediction must never enter the evaluation cache.
func cachePrediction(m *model, c *evalCache, k string, x []float64) {
	y := m.Predict(x)
	c.Store(k, y) // want `surrogate-predicted value stored into evalCache\.Store \(evaluation cache\)`
}

// A prediction must never become the recorded best.
func recordBest(m *model, res *Result, x []float64) {
	y := m.Predict(x)
	res.BestValue = y // want `surrogate-predicted value assigned to prunepurity\.BestValue \(best-result state\)`
}

// Laundering through arithmetic and a helper does not cleanse it:
// the helper's parameter summary says it sinks, so the call is the
// violation.
func chargeCost(st *runStats, amount float64) {
	st.TuningCost += amount
}

func accountPrediction(m *model, st *runStats, x []float64) {
	y := 0.5 * m.Predict(x)
	chargeCost(st, y) // want `surrogate-predicted value passed to chargeCost, whose parameter 1 flows into`
}

// Field taint crosses function boundaries: the prediction parked in
// trial.predicted is still a prediction when harvested later.
func markPruned(m *model, t *trial, x []float64) {
	t.predicted = m.Predict(x)
	t.pruned = true
}

func harvest(t *trial, res *Result) {
	res.BestValue = t.predicted // want `surrogate-predicted value assigned to prunepurity\.BestValue \(best-result state\)`
}

// A helper whose result carries a prediction taints its call sites.
func guess(m *model, x []float64) float64 {
	return m.Predict(x)
}

func cacheGuess(m *model, c *evalCache, k string, x []float64) {
	c.Store(k, guess(m, x)) // want `surrogate-predicted value stored into evalCache\.Store \(evaluation cache\)`
}

// Negative: branching on a prediction is the pruning design.
func shouldPrune(m *model, x []float64, threshold float64) bool {
	return m.Predict(x) > threshold
}

// Negative: measured values may be cached and recorded freely.
func recordMeasurement(c *evalCache, res *Result, k string, measured float64) {
	c.Store(k, measured)
	res.BestValue = measured
	res.Evals++
}

// Negative: predictions may flow to the strategy — Report/ReportBatch
// is the designed prediction channel.
type strategy interface {
	ReportBatch(xs [][]float64, vals []float64)
}

func reportPredictions(m *model, st strategy, xs [][]float64, vals []float64) {
	for i, x := range xs {
		vals[i] = m.Predict(x)
	}
	st.ReportBatch(xs, vals)
}

// A justified suppression keeps the finding out of the report.
func seedBest(m *model, res *Result, x []float64) {
	warm := m.Predict(x)
	//harmonyvet:ignore prunepurity the warm-start seed is labelled predicted in the client UI and is overwritten by the first real measurement
	res.BestValue = warm
}

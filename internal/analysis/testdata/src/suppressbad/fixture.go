// Package suppressbad holds malformed suppression directives; the
// validation test asserts they are reported and do not suppress.
package suppressbad

import "fmt"

func MissingReason(m map[string]int) {
	//harmonyvet:ignore maporder
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func UnknownAnalyzer(m map[string]int) {
	//harmonyvet:ignore nosuchcheck because reasons
	for k, v := range m {
		fmt.Println(k, v)
	}
}

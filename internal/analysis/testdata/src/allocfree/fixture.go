// Package allocfree exercises the allocfree analyzer: a function
// annotated //harmonyvet:allocfree must be transitively free of heap
// allocation.
package allocfree

import (
	"fmt"
	"math"
	"strings"
)

type point struct{ x, y float64 }

func noop() {}

func sinkAny(v any) { _ = v }

//harmonyvet:allocfree
func hotMake(n int) []float64 {
	buf := make([]float64, n) // want `make allocates on the allocation-free path of hotMake`
	return buf
}

//harmonyvet:allocfree
func hotEscape() *point {
	return &point{x: 1} // want `&composite literal escapes to the heap`
}

//harmonyvet:allocfree
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//harmonyvet:allocfree
func hotConv(s string) int {
	b := []byte(s) // want `string to \[\]byte conversion allocates`
	return len(b)
}

//harmonyvet:allocfree
func hotClosure(n int) func() int {
	return func() int { return n } // want `closure captures variables and may allocate its environment`
}

//harmonyvet:allocfree
func hotDynamic(f func() int) int {
	return f() // want `dynamic call \(func value or interface method\) cannot be proven allocation-free`
}

//harmonyvet:allocfree
func hotGo() {
	go noop() // want `go statement allocates a goroutine`
}

//harmonyvet:allocfree
func hotBox(x int) {
	sinkAny(x) // want `argument boxes int into interface parameter of sinkAny`
}

//harmonyvet:allocfree
func hotForeign(s string) string {
	return strings.ToUpper(s) // want `calls strings.ToUpper, which harmonyvet cannot prove allocation-free`
}

// An allocation introduced in a helper is caught at its site and
// attributed to the annotated root that reaches it.

//harmonyvet:allocfree
func hotEntry(dst []byte, s string) int {
	return helperGrow(dst, s)
}

func helperGrow(dst []byte, s string) int {
	dst = append(dst, s...) // want `append may grow its backing array on the allocation-free path of hotEntry \(hotEntry → helperGrow\)`
	return len(dst)
}

// Negative cases: the allowlisted pure stdlib, panic arguments,
// annotated callees (which carry their own proof), amortized warm-up
// sites, and cold paths produce no findings.

//harmonyvet:allocfree
func hotMath(x float64) float64 { return math.Sqrt(x) }

//harmonyvet:allocfree
func hotLeaf(x, y float64) float64 { return x*y + 1 }

//harmonyvet:allocfree
func hotComposed(x float64) float64 { return hotLeaf(x, x) }

//harmonyvet:allocfree
func hotPanic(i, n int) int {
	if i >= n {
		panic(fmt.Sprintf("index %d out of range [0,%d)", i, n))
	}
	return i
}

//harmonyvet:allocamortized the buffer grows once to its high-water capacity; steady-state calls reslice in place
func warmGrow(buf []float64, n int) []float64 {
	for cap(buf) < n {
		buf = append(buf, 0)
	}
	return buf[:n]
}

//harmonyvet:allocfree
func hotViaAmortized(buf []float64) float64 {
	buf = warmGrow(buf, 8)
	return buf[0]
}

//harmonyvet:coldpath the run is already failing; formatting the diagnostic may allocate freely
func coldReport(code int) string {
	return fmt.Sprintf("failed with code %d", code)
}

//harmonyvet:allocfree
func hotWithColdExit(ok bool) string {
	if !ok {
		return coldReport(1)
	}
	return ""
}

// A fixed-capacity ring buffer is the steady-state shape of the
// pipelined engine: the cursor helpers only index into a buffer sized
// at construction, so they prove allocation-free, while a ring that
// grows inside a steady-state helper is caught at the append.

type ring struct {
	buf  []int
	head int
	n    int
}

//harmonyvet:allocfree
func (r *ring) push(v int) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

//harmonyvet:allocfree
func (r *ring) pop() int {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

//harmonyvet:allocfree
func hotRingCycle(r *ring, v int) int {
	r.push(v)
	return r.pop()
}

//harmonyvet:allocfree
func hotRingGrow(r *ring, v int) {
	r.buf = append(r.buf, v) // want `append may grow its backing array on the allocation-free path of hotRingGrow`
	r.n++
}

// Growing the ring to its high-water capacity is legal when the grow
// site carries its own amortisation proof, exactly like warmGrow.

//harmonyvet:allocamortized the window grows once to the configured depth; steady-state polls reuse it
func (r *ring) reserve(depth int) {
	for cap(r.buf) < depth {
		r.buf = append(r.buf, 0)
	}
	r.buf = r.buf[:depth]
}

//harmonyvet:allocfree
func hotRingViaReserve(r *ring, v int) int {
	r.reserve(8)
	r.push(v)
	return r.pop()
}

// A justified suppression keeps the finding out of the report.

//harmonyvet:allocfree
func hotSuppressed(n int) int {
	//harmonyvet:ignore allocfree the scratch is fixed-size and proven stack-allocated with -gcflags=-m
	scratch := make([]int, 4)
	s := 0
	for i := 0; i < n; i++ {
		s += scratch[i&3]
	}
	return s
}

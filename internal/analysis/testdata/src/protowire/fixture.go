// Package protowire exercises the protowire analyzer: every binary
// wire tag needs an encode arm and a decode arm, tags and Message
// fields stay in bijection, and decode switches must act on unknown
// tags.
package protowire

// Message is the fixture's wire message. ID, Perf, and Round are
// fully wired; the remaining fields each break the contract in one
// way.
type Message struct {
	ID      string
	Perf    float64
	Round   int
	Dropped string
	Dead    int
	Note    string // want `Message field Note has no wire tag \(const tagNote\)`
	//harmonyvet:ignore protowire Debug is a JSON-only diagnostic; the binary protocol intentionally omits it
	Debug string
}

const (
	tagID      = 1
	tagPerf    = 2
	tagRound   = 3
	tagDropped = 4 // want `wire tag tagDropped has no decode arm: peers sending it are silently ignored`
	tagDead    = 5 // want `wire tag tagDead has no encode arm: the field is never written to binary frames`
	tagGhost   = 6 // want `wire tag tagGhost has no matching Message field Ghost`
)

func encode(m *Message, put func(tag int, v any)) {
	put(tagID, m.ID)
	put(tagPerf, m.Perf)
	put(tagRound, m.Round)
	put(tagDropped, m.Dropped)
	put(tagGhost, nil)
}

// decode is the well-formed decode switch: every case resolves a tag
// constant and the default acts on unknown tags.
func decode(tag int, m *Message) {
	switch tag {
	case tagID:
		m.ID = "id"
	case tagPerf:
		m.Perf = 1
	case tagRound:
		m.Round = 1
	case tagDead:
		m.Dead = 1
	case tagGhost:
		// length-prefixed: skipped without a field
	default:
		skipUnknown(tag)
	}
}

func skipUnknown(tag int) { _ = tag }

// A decode switch without a default swallows unknown tags.
func decodeLegacy(tag int, m *Message) {
	switch tag { // want `decode switch over wire tags has no default: an unknown tag from a newer peer would fall through silently`
	case tagID:
		m.ID = "legacy"
	case tagRound:
		m.Round = 0
	}
}

// A default that only assigns is as silent as no default at all.
func decodeSloppy(tag int, m *Message) {
	n := 0
	switch tag {
	case tagPerf:
		n++
	case tagDead:
		m.Dead = n
	default: // want `decode switch default is inert: unknown wire tags must be failed or explicitly skipped, not swallowed`
		n = 0
	}
	_ = n
}

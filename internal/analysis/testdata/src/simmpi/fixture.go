// Package simmpi is a wallclock fixture: its directory base name
// makes the analyzer treat it like the real virtual-time package.
package simmpi

import "time"

// Sink absorbs values so the fixture type-checks cleanly.
var Sink any

// Clock is an injected clock in the style the exempt packages use.
type Clock func() time.Time

func Bad() {
	Sink = time.Now()              // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	Sink = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
	Sink = time.After(time.Second) // want `time\.After reads the wall clock`
}

// Watchdog is the shape the real package's deadlock watchdog had
// before the cooperative scheduler made detection structural: a
// select racing completion against a wall-clock timer. The pattern
// carried a //harmonyvet:ignore suppression then; now it must be
// flagged so the watchdog cannot quietly return.
func Watchdog(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(60 * time.Second): // want `time\.After reads the wall clock`
		panic("simmpi: deadlock watchdog fired")
	}
}

func Good(clock Clock, virtual float64) {
	Sink = clock()                // injected clock: allowed
	Sink = time.Duration(virtual) // pure conversion: allowed
	Sink = time.Unix(0, 0)        // pure constructor: allowed
}

// Package search exercises the randsource analyzer: its directory
// base name makes the analyzer treat it like the real search package.
package search

import "math/rand"

func Bad(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return rand.Intn(n)                // want `rand\.Intn draws from the process-global source`
}

// Good draws from an injected, caller-seeded generator.
func Good(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// NewSeeded builds the generator; the constructors are the approved
// idiom and must not be flagged.
func NewSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

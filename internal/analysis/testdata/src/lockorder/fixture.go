// Package lockorder exercises the lockorder analyzer: the sharded
// server's locking contract (one shard lock at a time, nothing
// blocking under it, the deadline heap owned by its shard's mutex,
// shard.mu strictly before session.mu).
package lockorder

import (
	"container/heap"
	"os"
	"sync"
)

type session struct {
	mu sync.Mutex
	id string
}

type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
	dq       deadlineQueue
}

type deadlineEntry struct {
	at int64
	id string
}

type deadlineQueue []deadlineEntry

func (q deadlineQueue) Len() int           { return len(q) }
func (q deadlineQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q deadlineQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *deadlineQueue) Push(x any)        { *q = append(*q, x.(deadlineEntry)) }
func (q *deadlineQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type server struct {
	logf func(string, ...any)
}

// No goroutine may hold two shard mutexes.
func doubleShard(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquires shard lock b\.mu while already holding shard lock a\.mu`
	b.mu.Unlock()
}

// Lock order: shard.mu strictly before session.mu.
func sessionThenShard(sh *shard, ss *session) {
	ss.mu.Lock()
	sh.mu.Lock() // want `acquires shard lock sh\.mu while session lock ss\.mu is held`
	sh.mu.Unlock()
	ss.mu.Unlock()
}

// No channel operation under a shard lock.
func sendUnderLock(sh *shard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `channel send while shard lock sh\.mu is held`
	sh.mu.Unlock()
}

// No callback through a func value under a shard lock: it may block
// or re-enter the server.
func callbackUnderLock(s *server, sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.logf("dispatching") // want `calls through func value s\.logf .* while shard lock sh\.mu is held`
}

// The deadline heap is owned by its shard's lock.
func heapNoLock(sh *shard, e deadlineEntry) {
	heap.Push(&sh.dq, e) // want `deadline-heap mutation of sh\.dq without holding sh\.mu`
}

// Violations are transitive: a callee that acquires a shard lock, or
// that blocks, is flagged at the locked call site.
func lockOther(sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}

func nestedLock(a, b *shard) {
	a.mu.Lock()
	lockOther(b) // want `calls lockOther, which acquires a shard lock, while shard lock a\.mu is held`
	a.mu.Unlock()
}

func logLine(msg string) {
	os.Stdout.WriteString(msg)
}

func ioUnderLock(sh *shard, msg string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	logLine(msg) // want `calls logLine, which calls os\.WriteString \(blocking I/O\), while shard lock sh\.mu is held`
}

// Functions named *Locked require their caller to hold a lock.
func (ss *session) retireLocked() {
	ss.id = ""
}

func missingLock(ss *session) {
	ss.retireLocked() // want `calls retireLocked, which by convention requires its caller to hold a lock, with no shard or session lock held`
}

// Negative: lock, unlock, then the blocking operation.
func sendAfterUnlock(sh *shard, ch chan int) {
	sh.mu.Lock()
	sh.mu.Unlock()
	ch <- 1
}

// Negative: interface method calls under a lock are the session state
// machine's design; only func-typed callbacks are forbidden.
type strategy interface{ Report(v float64) }

func strategyUnderLock(sh *shard, st strategy) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.Report(1.5)
}

// Negative: the *Locked convention is satisfied by a held lock.
func properLocked(ss *session) {
	ss.mu.Lock()
	ss.retireLocked()
	ss.mu.Unlock()
}

// Negative: heap mutation under the owning shard's lock.
func heapUnderLock(sh *shard, e deadlineEntry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	heap.Push(&sh.dq, e)
}

// A justified suppression keeps the finding out of the report.
func suppressedSend(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	//harmonyvet:ignore lockorder the channel has one slot per shard and a single consumer that never blocks; the send cannot stall the lock
	ch <- 1
}

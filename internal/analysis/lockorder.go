package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockorderAnalyzer enforces the sharded server's locking contract
// (internal/server/shard.go: "Lock order: shard.mu before session.mu,
// always"):
//
//  1. no scope holds two shard mutexes at once — directly or by
//     calling a function that takes one;
//  2. no channel operation, goroutine launch, blocking I/O, or
//     callback through a func value (s.Logf, injected clocks) runs
//     while a shard mutex is held — directly or transitively;
//  3. a shard's deadline heap (the .dq field) is mutated only under
//     that shard's own mutex;
//  4. shard.mu is never acquired while a session.mu is held;
//  5. functions named *Locked hold a lock by convention: they are
//     scanned as if their shard/session lock were already held, and
//     calling one with no lock held positionally is flagged.
//
// The scan is positional, like lockcheck: statements are visited in
// source order and a deferred unlock keeps the lock held to the end
// of the scope. Shard and session mutexes are recognised as the .mu
// field of a type named "shard" or "session". Facts about callees
// (performs a forbidden operation, acquires a shard lock) are
// computed transitively over the static call graph, so a violation
// three calls deep is reported at the locked call site with the
// offending chain named.
var lockorderAnalyzer = &Analyzer{
	Name:       "lockorder",
	Doc:        "sharded-server lock discipline: one shard lock, no chan/IO/callback under it, heap under owner, shard before session",
	Applies:    baseIn("server", "lockorder"),
	RunProgram: runLockorder,
}

// lockorder fact names.
const (
	factLockUnsafe = "lockorder.unsafe"      // performs a forbidden op (directly or via calls)
	factLocksShard = "lockorder.locks-shard" // acquires a shard mutex itself
)

// lockorderIOPkgs are stdlib packages whose calls block on I/O.
var lockorderIOPkgs = map[string]bool{
	"net": true, "os": true, "io": true, "bufio": true, "log": true,
}

func runLockorder(pp *ProgramPass) {
	computeLockFacts(pp)
	for _, pkg := range pp.Packages() {
		for _, fi := range pp.Prog.funcsIn(pkg) {
			scanLockScope(pp, fi)
		}
	}
}

// lockNamedBase returns the name of the named struct type behind e
// (dereferencing one pointer), or "".
func lockNamedBase(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// lockTarget classifies a call as Lock/Unlock of a shard or session
// mutex: a selector chain X.mu.(Lock|Unlock) where X's named type is
// "shard" or "session". Returns the owner kind, the canonical text of
// X, and whether it locks (true) or unlocks (false).
func lockTarget(info *types.Info, call *ast.CallExpr) (kind, base string, lock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		lock = true
	case "Unlock":
	default:
		return "", "", false, false
	}
	mu, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel || mu.Sel.Name != "mu" {
		return "", "", false, false
	}
	kind = lockNamedBase(info, mu.X)
	if kind != "shard" && kind != "session" {
		return "", "", false, false
	}
	return kind, exprText(mu.X), lock, true
}

// heapDQBase matches container/heap calls whose first argument is (a
// pointer to) the .dq field of a shard, returning the shard expr text.
func heapDQBase(pkg *Package, call *ast.CallExpr) (base string, ok bool) {
	fn := StaticCallee(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "container/heap" {
		return "", false
	}
	switch fn.Name() {
	case "Push", "Pop", "Fix", "Init", "Remove":
	default:
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	arg := ast.Unparen(call.Args[0])
	if u, isU := arg.(*ast.UnaryExpr); isU && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	sel, isSel := arg.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "dq" {
		return "", false
	}
	if lockNamedBase(pkg.Info, sel.X) != "shard" {
		return "", false
	}
	return exprText(sel.X), true
}

// directForbidden describes why a single expression/statement is
// forbidden under a shard lock, or "".
func directForbiddenCall(pkg *Package, call *ast.CallExpr) string {
	info := pkg.Info
	// Builtins and conversions are fine.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			return ""
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return ""
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			// Interface method calls (strategy.Report under session locks)
			// are part of the session state machine; the callback rule is
			// about func-typed fields like Logf and injected clocks.
			return ""
		}
	}
	fn := StaticCallee(pkg, call)
	if fn == nil {
		return fmt.Sprintf("calls through func value %s (a callback may block or re-enter the server)", exprText(call.Fun))
	}
	if p := fn.Pkg(); p != nil {
		if lockorderIOPkgs[p.Path()] {
			return fmt.Sprintf("calls %s.%s (blocking I/O)", p.Path(), fn.Name())
		}
		if p.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			return fmt.Sprintf("calls fmt.%s (writes to an io.Writer)", fn.Name())
		}
	}
	return ""
}

// computeLockFacts summarises every function of the applicable
// packages: does it perform a forbidden-under-shard-lock operation,
// and does it acquire a shard lock — in both cases directly or
// through static module calls, to a fixpoint.
func computeLockFacts(pp *ProgramPass) {
	prog := pp.Prog
	facts := prog.Facts()
	var fis []*FuncInfo
	for _, pkg := range pp.FactPackages() {
		fis = append(fis, prog.funcsIn(pkg)...)
	}
	for _, fi := range fis {
		if fi.Decl.Body == nil {
			continue
		}
		pkg := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SendStmt:
				setIfAbsent(facts, fi.Fn, factLockUnsafe, "performs a channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					setIfAbsent(facts, fi.Fn, factLockUnsafe, "performs a channel receive")
				}
			case *ast.SelectStmt:
				setIfAbsent(facts, fi.Fn, factLockUnsafe, "blocks in a select")
			case *ast.GoStmt:
				setIfAbsent(facts, fi.Fn, factLockUnsafe, "starts a goroutine")
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						setIfAbsent(facts, fi.Fn, factLockUnsafe, "ranges over a channel")
					}
				}
			case *ast.CallExpr:
				if desc := directForbiddenCall(pkg, x); desc != "" {
					setIfAbsent(facts, fi.Fn, factLockUnsafe, desc)
				}
				if _, _, lock, ok := lockTarget(pkg.Info, x); ok && lock {
					if kind, _, _, _ := lockTarget(pkg.Info, x); kind == "shard" {
						setIfAbsent(facts, fi.Fn, factLocksShard, "acquires a shard lock")
					}
				}
			}
			return true
		})
	}
	// Transitive closure over static module calls.
	for changed := true; changed; {
		changed = false
		for _, fi := range fis {
			for _, callee := range prog.Callees(fi) {
				if desc, ok := facts.Get(callee, factLockUnsafe); ok && !facts.Has(fi.Fn, factLockUnsafe) {
					facts.Set(fi.Fn, factLockUnsafe, fmt.Sprintf("calls %s, which %s", callee.Name(), rootCause(desc)))
					changed = true
				}
				if desc, ok := facts.Get(callee, factLocksShard); ok && !facts.Has(fi.Fn, factLocksShard) {
					facts.Set(fi.Fn, factLocksShard, fmt.Sprintf("calls %s, which %s", callee.Name(), rootCause(desc)))
					changed = true
				}
			}
		}
	}
}

// rootCause strips nested "calls X, which " prefixes so transitive
// fact messages name the chain without repeating the connective.
func rootCause(desc string) string { return desc }

func setIfAbsent(facts *FactStore, fn *types.Func, name, value string) {
	if !facts.Has(fn, name) {
		facts.Set(fn, name, value)
	}
}

// virtualLocks returns the lock state a *Locked-named function is
// entitled to assume at entry: its *shard parameter's lock, else its
// *session receiver's (or parameter's) lock.
func virtualLocks(fi *FuncInfo) (shard []string, session []string) {
	if !strings.HasSuffix(fi.Fn.Name(), "Locked") {
		return nil, nil
	}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := fi.Pkg.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			name := ""
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok {
					name = named.Obj().Name()
				}
			}
			for _, id := range f.Names {
				switch name {
				case "shard":
					shard = append(shard, id.Name)
				case "session":
					session = append(session, id.Name)
				}
			}
		}
	}
	collect(fi.Decl.Recv)
	if fi.Decl.Type != nil {
		collect(fi.Decl.Type.Params)
	}
	// A function with a shard parameter holds the shard lock; a pure
	// session helper holds only its session lock. Holding the shard
	// lock does not imply holding the session's.
	if len(shard) > 0 {
		session = nil
	}
	return shard, session
}

// scanLockScope runs the positional scan over one function and each
// of its function literals (literals hold no virtual locks).
func scanLockScope(pp *ProgramPass, fi *FuncInfo) {
	if fi.Decl.Body == nil {
		return
	}
	vs, vsess := virtualLocks(fi)
	scanLockBody(pp, fi, fi.Decl.Body, vs, vsess)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanLockBody(pp, fi, lit.Body, nil, nil)
			return false
		}
		return true
	})
}

// scanLockBody walks one scope in source order maintaining the held
// shard/session lock sets.
func scanLockBody(pp *ProgramPass, fi *FuncInfo, body *ast.BlockStmt, heldShard, heldSession []string) {
	pkg := fi.Pkg
	facts := pp.Prog.Facts()
	virtual := len(heldShard) > 0 || len(heldSession) > 0

	remove := func(set []string, base string) []string {
		for i, b := range set {
			if b == base {
				return append(set[:i], set[i+1:]...)
			}
		}
		return set
	}
	held := func(set []string, base string) bool {
		for _, b := range set {
			if b == base {
				return true
			}
		}
		return false
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // scanned as its own scope
			case *ast.SendStmt:
				if len(heldShard) > 0 {
					pp.Reportf(x.Pos(), "channel send while shard lock %s.mu is held", heldShard[0])
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && len(heldShard) > 0 {
					pp.Reportf(x.Pos(), "channel receive while shard lock %s.mu is held", heldShard[0])
				}
			case *ast.SelectStmt:
				if len(heldShard) > 0 {
					pp.Reportf(x.Pos(), "select while shard lock %s.mu is held", heldShard[0])
				}
			case *ast.GoStmt:
				if len(heldShard) > 0 {
					pp.Reportf(x.Pos(), "goroutine started while shard lock %s.mu is held", heldShard[0])
				}
			case *ast.CallExpr:
				if kind, base, lock, ok := lockTarget(pkg.Info, x); ok {
					switch {
					case kind == "shard" && lock:
						if len(heldShard) > 0 {
							pp.Reportf(x.Pos(), "acquires shard lock %s.mu while already holding shard lock %s.mu (no goroutine may hold two shard mutexes)", base, heldShard[0])
						}
						if len(heldSession) > 0 {
							pp.Reportf(x.Pos(), "acquires shard lock %s.mu while session lock %s.mu is held (lock order: shard.mu before session.mu)", base, heldSession[0])
						}
						heldShard = append(heldShard, base)
					case kind == "shard":
						heldShard = remove(heldShard, base)
					case kind == "session" && lock:
						heldSession = append(heldSession, base)
					case kind == "session":
						heldSession = remove(heldSession, base)
					}
					return true
				}
				if base, ok := heapDQBase(pkg, x); ok {
					if !held(heldShard, base) {
						pp.Reportf(x.Pos(), "deadline-heap mutation of %s.dq without holding %s.mu (the heap is owned by its shard's lock)", base, base)
					}
					return true
				}
				if len(heldShard) > 0 {
					if desc := directForbiddenCall(pkg, x); desc != "" {
						pp.Reportf(x.Pos(), "%s while shard lock %s.mu is held", desc, heldShard[0])
					} else if fn := StaticCallee(pkg, x); fn != nil && pp.Prog.FuncOf(fn) != nil {
						if desc, ok := facts.Get(fn, factLockUnsafe); ok {
							pp.Reportf(x.Pos(), "calls %s, which %s, while shard lock %s.mu is held", fn.Name(), desc, heldShard[0])
						}
						if desc, ok := facts.Get(fn, factLocksShard); ok {
							pp.Reportf(x.Pos(), "calls %s, which %s, while shard lock %s.mu is held", fn.Name(), desc, heldShard[0])
						}
					}
				}
				if fn := StaticCallee(pkg, x); fn != nil &&
					strings.HasSuffix(fn.Name(), "Locked") && pp.Prog.FuncOf(fn) != nil &&
					len(heldShard) == 0 && len(heldSession) == 0 && !virtual {
					pp.Reportf(x.Pos(), "calls %s, which by convention requires its caller to hold a lock, with no shard or session lock held", fn.Name())
				}
			case *ast.DeferStmt:
				// A deferred unlock releases at return: for the positional
				// scan the lock simply stays held to the end of the scope,
				// so skip the call (do not treat it as an immediate unlock)
				// but still classify forbidden deferred work.
				if kind, _, lock, ok := lockTarget(pkg.Info, x.Call); ok && !lock {
					_ = kind
					return false
				}
				walk(x.Call)
				return false
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(x.X); t != nil && len(heldShard) > 0 {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pp.Reportf(x.Pos(), "ranges over a channel while shard lock %s.mu is held", heldShard[0])
					}
				}
			}
			return true
		})
	}
	walk(body)
}

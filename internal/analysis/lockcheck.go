package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// lockcheckAnalyzer catches the two mutex mistakes the simulator's
// rendezvous-heavy code is most exposed to:
//
//  1. A mutex locked on a path with a return before the unlock and no
//     deferred unlock in the function: the next rank to block on that
//     mutex deadlocks the whole world. The check is positional — a
//     return statement between a Lock call and the next Unlock of the
//     same expression (with no defer covering it) is flagged — which
//     matches the condition-variable style used throughout simmpi
//     without a full control-flow graph.
//  2. A struct containing a sync.Mutex/RWMutex passed (or received)
//     by value: the copy locks a different mutex than the original,
//     silently removing mutual exclusion.
var lockcheckAnalyzer = &Analyzer{
	Name:    "lockcheck",
	Doc:     "no returns while a mutex is held without defer; no mutex-bearing structs passed by value",
	Applies: everywhere,
	Run: func(p *Pass) {
		p.inspect(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockPaths(p, n.Body)
				}
				checkMutexByValue(p, n)
			case *ast.FuncLit:
				checkLockPaths(p, n.Body)
			}
			return true
		})
	},
}

// lockEvent is one Lock/Unlock call or return inside one function
// scope (nested function literals are analyzed separately).
type lockEvent struct {
	pos      token.Pos
	recv     string // canonical receiver text, "" for returns
	lock     bool   // Lock/RLock
	unlock   bool   // Unlock/RUnlock
	deferred bool
	ret      bool
}

// checkLockPaths scans one function body, skipping nested literals.
func checkLockPaths(p *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own scope
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.ReturnStmt:
				events = append(events, lockEvent{pos: n.Pos(), ret: true})
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				isLock := name == "Lock" || name == "RLock"
				isUnlock := name == "Unlock" || name == "RUnlock"
				if (!isLock && !isUnlock) || !isMutexExpr(p, sel.X) {
					return true
				}
				events = append(events, lockEvent{
					pos: n.Pos(), recv: exprText(sel.X),
					lock: isLock, unlock: isUnlock, deferred: inDefer,
				})
			}
			return true
		})
	}
	walk(body, false)

	for i, e := range events {
		if !e.lock || e.deferred {
			continue
		}
		deferredUnlock := false
		for _, u := range events {
			if u.unlock && u.deferred && u.recv == e.recv {
				deferredUnlock = true
				break
			}
		}
		if deferredUnlock {
			continue
		}
		// The next plain unlock of the same receiver bounds the
		// critical section; a return inside it leaks the lock.
		end := token.Pos(-1)
		for _, u := range events[i+1:] {
			if u.unlock && !u.deferred && u.recv == e.recv {
				end = u.pos
				break
			}
		}
		for _, r := range events[i+1:] {
			if !r.ret {
				continue
			}
			if end >= 0 && r.pos >= end {
				break
			}
			p.Reportf(r.pos, "return while %s is locked (locked at line %d, no deferred unlock)",
				e.recv, p.Pkg.Fset.Position(e.pos).Line)
		}
		if end < 0 {
			p.Reportf(e.pos, "%s is locked but never unlocked in this function (and no deferred unlock)", e.recv)
		}
	}
}

// checkMutexByValue flags receivers and parameters whose value type
// contains a mutex.
func checkMutexByValue(p *Pass, fd *ast.FuncDecl) {
	check := func(fields *ast.FieldList, kind string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			t := p.Pkg.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsMutex(t, 0) {
				p.Reportf(f.Pos(), "%s of %s passes a struct containing a sync mutex by value; pass a pointer so the lock is shared", kind, fd.Name.Name)
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type != nil {
		check(fd.Type.Params, "parameter")
	}
}

// isMutexExpr reports whether e has (or points to) a sync.Mutex,
// sync.RWMutex, or sync.Locker type.
func isMutexExpr(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isSyncMutexType(t)
}

func isSyncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsMutex reports whether t embeds a sync mutex by value,
// directly or through nested structs/arrays.
func containsMutex(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if isSyncMutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), depth+1)
	}
	return false
}

// exprText renders an expression canonically for receiver matching.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}

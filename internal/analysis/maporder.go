package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporderAnalyzer flags `for range` loops over maps whose bodies are
// sensitive to iteration order. Go randomises map iteration order per
// range statement, so such a loop produces run-dependent results:
// float accumulation picks up different rounding, slices feeding
// message schedules or fan-out rounds are built in different orders,
// and logs or wire writes interleave differently. PR 3 fixed exactly
// this bug by hand in AlltoallvBytes; this analyzer makes the fix
// mechanical.
//
// The sanctioned idiom — collect the map's keys, sort them, loop over
// the sorted slice — is recognised and allowed: a loop body that only
// appends the *key* variable (and performs no other flagged
// operation) is the first half of that idiom.
//
// A body is flagged when it
//
//  1. accumulates into a float (or complex) variable with a compound
//     assignment (+=, -=, *=, /=) — reassociating float arithmetic
//     changes the bits;
//  2. appends an expression involving the range *value* variable to a
//     slice — downstream consumers (schedules, sends, rounds) observe
//     the random order; or
//  3. calls anything that looks like I/O or messaging (names starting
//     with Send, Recv, Write, Print, Fprint, Encode, Log, Flush,
//     Close) — the external effect happens in random order.
var maporderAnalyzer = &Analyzer{
	Name:    "maporder",
	Doc:     "no order-sensitive work inside map-range loops; iterate sorted keys",
	Applies: everywhere,
	Run: func(p *Pass) {
		p.inspect(func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := mapLoopHazard(p, rs); reason != "" {
				p.Reportf(rs.For, "map iteration order is random: %s; iterate sorted keys instead", reason)
			}
			return true
		})
	},
}

// ioNamePrefixes mark calls whose effects escape the loop in
// iteration order.
var ioNamePrefixes = []string{
	"Send", "Recv", "Write", "Print", "Fprint", "Encode", "Log", "Flush", "Close",
}

// mapLoopHazard returns a description of the first order-sensitive
// operation in the loop body, or "" when the body is order-safe.
func mapLoopHazard(p *Pass, rs *ast.RangeStmt) string {
	valueObj := rangeVarObj(p, rs.Value)
	var reason string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloaty(p.Pkg.Info.TypeOf(lhs)) {
						reason = "the body accumulates into a float, so the rounding depends on visit order"
						return false
					}
				}
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if id, ok := fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if valueObj != nil && usesObj(p, arg, valueObj) {
							reason = "the body appends map values to a slice, so its element order is random"
							return false
						}
					}
					return true
				}
			}
			if name := calleeName(fun); name != "" {
				for _, prefix := range ioNamePrefixes {
					if strings.HasPrefix(name, prefix) {
						reason = "the body calls " + name + ", so its external effects happen in random order"
						return false
					}
				}
			}
		}
		return true
	})
	return reason
}

// rangeVarObj resolves the object of a range variable expression
// (the `v` of `for k, v := range m`), or nil.
func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// usesObj reports whether the expression references obj.
func usesObj(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// calleeName returns the bare name of a call target: the selector for
// method/package calls, the identifier for plain calls.
func calleeName(fun ast.Expr) string {
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// isFloaty reports whether t is (or aliases) a floating-point or
// complex type.
func isFloaty(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic, printed as
// "file:line: [analyzer] message".
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //harmonyvet:ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Applies reports whether the analyzer runs on the package with
	// the given import path. Selection is by final path element, so
	// fixture packages under testdata/src/<name> are analyzed exactly
	// like the real package of the same name.
	Applies func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	// Exactly one of Run and RunProgram is set.
	Run func(p *Pass)
	// RunProgram runs once over the whole program instead of once per
	// package — the hook of the interprocedural analyzers (allocfree,
	// lockorder, prunepurity), which follow calls and facts across
	// package boundaries.
	RunProgram func(pp *ProgramPass)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		wallclockAnalyzer,
		maporderAnalyzer,
		randsourceAnalyzer,
		lockcheckAnalyzer,
		errdropAnalyzer,
		allocfreeAnalyzer,
		lockorderAnalyzer,
		protowireAnalyzer,
		prunepurityAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pkgBase returns the final element of an import path: the package
// selector the Applies filters match on.
func pkgBase(pkgPath string) string { return path.Base(pkgPath) }

// baseIn builds an Applies filter matching a set of final path
// elements.
func baseIn(names ...string) func(string) bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(pkgPath string) bool { return set[pkgBase(pkgPath)] }
}

// everywhere is the Applies filter of analyzers that run on every
// package of the module.
func everywhere(string) bool { return true }

// ignorePrefix introduces a suppression directive:
//
//	//harmonyvet:ignore <analyzer> <reason>
//
// The directive suppresses findings of the named analyzer on its own
// line and on the following line, so it can trail the offending
// statement or sit on its own line above it. The reason is mandatory:
// a directive without one is itself reported (as analyzer
// "harmonyvet"), so every suppression in the tree carries a written
// justification.
const ignorePrefix = "harmonyvet:ignore"

type suppression struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions scans a package's comments for harmonyvet
// directives, collecting ignore suppressions and reporting malformed
// or unknown directives as findings. The function-level verbs
// (allocfree, allocamortized, coldpath) are validated here too —
// allocamortized and coldpath excuse code from enforcement, so like
// ignore they demand a written reason.
func collectSuppressions(pkg *Package) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case verb == "ignore":
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0 || ByName(fields[0]) == nil:
						bad = append(bad, Finding{
							Pos: pos, Analyzer: "harmonyvet",
							Message: fmt.Sprintf("ignore directive must name a known analyzer (%s)", analyzerNames()),
						})
					case len(fields) < 2:
						bad = append(bad, Finding{
							Pos: pos, Analyzer: "harmonyvet",
							Message: fmt.Sprintf("ignore directive for %q needs a written reason", fields[0]),
						})
					default:
						sups = append(sups, suppression{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
					}
				case verb == dirAllocfree:
					// No argument: the enforcement directive needs no excuse.
				case verb == dirAllocamortized || verb == dirColdpath:
					if rest == "" {
						bad = append(bad, Finding{
							Pos: pos, Analyzer: "harmonyvet",
							Message: fmt.Sprintf("%s directive needs a written reason", verb),
						})
					}
				default:
					bad = append(bad, Finding{
						Pos: pos, Analyzer: "harmonyvet",
						Message: fmt.Sprintf("unknown harmonyvet directive %q (known: ignore, %s, %s, %s)",
							verb, dirAllocfree, dirAllocamortized, dirColdpath),
					})
				}
			}
		}
	}
	return sups, bad
}

func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// suppressed reports whether a finding is covered by a directive on
// its line or the line above.
func suppressed(f Finding, sups []suppression) bool {
	for _, s := range sups {
		if s.analyzer == f.Analyzer && s.file == f.Pos.Filename &&
			(s.line == f.Pos.Line || s.line == f.Pos.Line-1) {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the packages, filters suppressed
// findings, and returns the survivors sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunDetailed(pkgs, analyzers)
	return findings
}

// RunDetailed is Run plus the Program built for the interprocedural
// analyzers (nil when none ran), so callers can dump its fact store.
//
// Suppressions are collected globally: an interprocedural finding may
// land in a dependency package outside the pattern set (allocfree
// descends from an annotated root into its callees), and the ignore
// directive lives next to the offending line wherever that is.
// Malformed-directive findings, by contrast, are only reported for
// pattern packages, so vetting one directory does not surface
// diagnostics about another.
func RunDetailed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, *Program) {
	var out []Finding
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram != nil {
			prog = buildProgram(pkgs)
			break
		}
	}

	inPattern := make(map[*Package]bool, len(pkgs))
	var sups []suppression
	for _, pkg := range pkgs {
		inPattern[pkg] = true
		s, bad := collectSuppressions(pkg)
		sups = append(sups, s...)
		out = append(out, bad...)
	}
	if prog != nil {
		for _, pkg := range prog.allPackages() {
			if !inPattern[pkg] {
				s, _ := collectSuppressions(pkg)
				sups = append(sups, s...)
			}
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (a.Applies != nil && !a.Applies(pkg.Path)) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, f := range pass.findings {
				if !suppressed(f, sups) {
					out = append(out, f)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pp := &ProgramPass{Analyzer: a, Prog: prog}
		a.RunProgram(pp)
		for _, f := range pp.findings {
			if !suppressed(f, sups) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, prog
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

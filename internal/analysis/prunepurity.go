package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// prunepurityAnalyzer proves the surrogate transparency invariant
// from the pruning layer: a model-predicted value (the score a pruned
// Trial is answered with) must never be mistaken for a measurement.
// Concretely, values originating from a Predict call may flow to the
// strategy (Report/ReportBatch — the designed prediction channel) and
// into pruned Trial records, but never into
//
//   - an evaluation cache (methods named Store/Put on a *Cache type),
//   - best-result state (Best/BestValue/BestConfig/BestAtRun/
//     FirstValue fields, the server's measured-best shadow
//     measuredPt/measuredVal),
//   - run accounting (TuningCost).
//
// The dataflow is taint-style and flow-insensitive: assignments
// propagate taint through locals, struct fields (field-granular,
// program-wide), slices, and arithmetic; comparisons drop taint —
// branching on a prediction is the pruning design, only the value
// must not escape. Function summaries (does a result carry a
// prediction, does a parameter reach a sink) are computed over the
// static call graph to a fixpoint, so a prediction laundered through
// a helper and sunk two calls later is still caught at the call site.
var prunepurityAnalyzer = &Analyzer{
	Name:       "prunepurity",
	Doc:        "surrogate-predicted values never reach eval caches, Best results, or run accounting",
	Applies:    baseIn("core", "server", "prunepurity"),
	RunProgram: runPrunepurity,
}

// prunepurity fact names.
const (
	factPredResult = "prunepurity.result-predicted" // some result carries a predicted value
	factParamSink  = "prunepurity.param-sink"       // value = comma list of sinking param indices
)

// pruneSinkFields maps struct field names that constitute measurement
// sinks to the invariant they belong to.
var pruneSinkFields = map[string]string{
	"Best":        "best-result state",
	"BestValue":   "best-result state",
	"BestConfig":  "best-result state",
	"BestAtRun":   "best-result state",
	"FirstValue":  "best-result state",
	"TuningCost":  "run accounting",
	"measuredVal": "the measured-best shadow",
	"measuredPt":  "the measured-best shadow",
}

func runPrunepurity(pp *ProgramPass) {
	st := &puState{
		pp:            pp,
		fieldTaint:    make(map[*types.Var]bool),
		resultTaint:   make(map[*types.Func]bool),
		paramToResult: make(map[*types.Func]map[int]bool),
		paramSink:     make(map[*types.Func]map[int]string),
	}
	for _, pkg := range pp.FactPackages() {
		st.fis = append(st.fis, pp.Prog.funcsIn(pkg)...)
	}

	// Per-parameter summaries: does param i reach a sink, does it flow
	// to a result. Fixpoint: a summary may depend on callee summaries.
	for changed := true; changed; {
		changed = false
		for _, fi := range st.fis {
			if fi.Decl.Body == nil {
				continue
			}
			for i, obj := range paramObjs(fi) {
				la := st.newLocal(fi, false)
				la.taint[obj] = true
				la.run()
				if la.sinkDesc != "" && st.paramSink[fi.Fn][i] == "" {
					setIndexed(st.paramSink, fi.Fn, i, la.sinkDesc)
					changed = true
				}
				if la.returnsTainted && !st.paramToResult[fi.Fn][i] {
					if st.paramToResult[fi.Fn] == nil {
						st.paramToResult[fi.Fn] = make(map[int]bool)
					}
					st.paramToResult[fi.Fn][i] = true
					changed = true
				}
			}
		}
	}

	// Whole-program taint: seed from Predict calls, propagate through
	// fields and result summaries to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fi := range st.fis {
			if fi.Decl.Body == nil {
				continue
			}
			la := st.newLocal(fi, true)
			la.run()
			if la.returnsTainted && !st.resultTaint[fi.Fn] {
				st.resultTaint[fi.Fn] = true
				changed = true
			}
			if la.newFieldTaint {
				changed = true
			}
		}
	}

	// Export the summaries as facts (visible via harmonyvet -facts).
	facts := pp.Prog.Facts()
	for fn := range st.resultTaint {
		facts.Set(fn, factPredResult, "returns a surrogate-predicted value")
	}
	for fn, idx := range st.paramSink {
		var parts []string
		for i := 0; i < 64; i++ {
			if d, ok := idx[i]; ok && d != "" {
				parts = append(parts, d)
			}
		}
		if len(parts) > 0 {
			facts.Set(fn, factParamSink, strings.Join(parts, "; "))
		}
	}

	// Reporting pass over the pattern packages.
	inPattern := make(map[*Package]bool)
	for _, pkg := range pp.Packages() {
		inPattern[pkg] = true
	}
	for _, fi := range st.fis {
		if fi.Decl.Body == nil || !inPattern[fi.Pkg] {
			continue
		}
		la := st.newLocal(fi, true)
		la.run()
		la.reportPass = true
		la.walkOnce()
	}
}

// puState is the program-wide taint state shared by every local pass.
type puState struct {
	pp            *ProgramPass
	fis           []*FuncInfo
	fieldTaint    map[*types.Var]bool
	resultTaint   map[*types.Func]bool
	paramToResult map[*types.Func]map[int]bool
	paramSink     map[*types.Func]map[int]string
}

func setIndexed(m map[*types.Func]map[int]string, fn *types.Func, i int, v string) {
	if m[fn] == nil {
		m[fn] = make(map[int]string)
	}
	m[fn][i] = v
}

func paramObjs(fi *FuncInfo) []types.Object {
	var out []types.Object
	if fi.Decl.Type.Params == nil {
		return nil
	}
	for _, f := range fi.Decl.Type.Params.List {
		for _, id := range f.Names {
			if obj := fi.Pkg.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// puLocal is one flow-insensitive pass over one function body.
type puLocal struct {
	st         *puState
	fi         *FuncInfo
	useSources bool // treat Predict calls / summaries as taint sources
	taint      map[types.Object]bool

	returnsTainted bool
	sinkDesc       string // first sink description hit (summary mode)
	newFieldTaint  bool
	reportPass     bool
	changed        bool
}

func (st *puState) newLocal(fi *FuncInfo, useSources bool) *puLocal {
	return &puLocal{st: st, fi: fi, useSources: useSources, taint: make(map[types.Object]bool)}
}

// run iterates walkOnce until the local taint set stabilises.
func (la *puLocal) run() {
	for i := 0; i < 32; i++ {
		la.changed = false
		la.walkOnce()
		if !la.changed {
			return
		}
	}
}

func (la *puLocal) obj(id *ast.Ident) types.Object {
	info := la.fi.Pkg.Info
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func (la *puLocal) addTaint(o types.Object) {
	if o == nil || la.taint[o] {
		return
	}
	la.taint[o] = true
	la.changed = true
}

func (la *puLocal) addFieldTaint(f *types.Var) {
	if f == nil || la.st.fieldTaint[f] {
		return
	}
	// Summary passes must not pollute the program-wide field state
	// with hypothetical per-parameter taint.
	if !la.useSources {
		return
	}
	la.st.fieldTaint[f] = true
	la.newFieldTaint = true
	la.changed = true
}

// fieldOf resolves a selector to the struct field object it reads or
// writes, or nil.
func (la *puLocal) fieldOf(sel *ast.SelectorExpr) *types.Var {
	info := la.fi.Pkg.Info
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// tainted reports whether an expression carries a predicted value.
func (la *puLocal) tainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return la.taint[la.obj(x)]
	case *ast.ParenExpr:
		return la.tainted(x.X)
	case *ast.StarExpr:
		return la.tainted(x.X)
	case *ast.SelectorExpr:
		if f := la.fieldOf(x); f != nil && la.st.fieldTaint[f] {
			return true
		}
		if _, isPkg := la.fi.Pkg.Info.Uses[x.Sel].(*types.PkgName); isPkg {
			return false
		}
		return la.tainted(x.X)
	case *ast.IndexExpr:
		return la.tainted(x.X)
	case *ast.SliceExpr:
		return la.tainted(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return false // channel payloads are out of scope
		}
		return la.tainted(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			// Branching on a prediction is the pruning design; a boolean
			// derived from one carries no value to protect.
			return false
		}
		return la.tainted(x.X) || la.tainted(x.Y)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if la.tainted(kv.Value) {
					return true
				}
				continue
			}
			if la.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return la.callTainted(x)
	case *ast.TypeAssertExpr:
		return la.tainted(x.X)
	}
	return false
}

// callTainted classifies a call's result taint.
func (la *puLocal) callTainted(call *ast.CallExpr) bool {
	info := la.fi.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && la.tainted(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "min", "max":
				for _, a := range call.Args {
					if la.tainted(a) {
						return true
					}
				}
			}
			return false
		}
	}
	// The taint source: any Predict method — the surrogate interface's
	// single entry point, matched by name so fixtures and future
	// models are covered without a type allowlist.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Predict" && la.useSources {
		return true
	}
	fn := StaticCallee(la.fi.Pkg, call)
	if fn != nil && la.st.pp.Prog.FuncOf(fn) != nil {
		if la.useSources && la.st.resultTaint[fn] {
			return true
		}
		if ptr := la.st.paramToResult[fn]; ptr != nil {
			for i, a := range call.Args {
				if ptr[i] && la.tainted(a) {
					return true
				}
			}
		}
		return false
	}
	// Foreign or dynamic call: taint passes through arguments
	// (math.Abs of a prediction is still a prediction).
	for _, a := range call.Args {
		if la.tainted(a) {
			return true
		}
	}
	return false
}

// walkOnce makes one pass over the body: propagate assignments,
// check sinks (when reporting), note tainted returns.
func (la *puLocal) walkOnce() {
	ast.Inspect(la.fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			la.assign(x)
		case *ast.GenDecl:
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && la.tainted(vs.Values[i]) {
						la.addTaint(la.obj(name))
					}
				}
			}
		case *ast.RangeStmt:
			if la.tainted(x.X) {
				if id, ok := x.Value.(*ast.Ident); ok {
					la.addTaint(la.obj(id))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if la.tainted(r) {
					la.returnsTainted = true
				}
			}
		case *ast.CallExpr:
			la.checkCallSinks(x)
		}
		return true
	})
}

// assign propagates one assignment statement and checks field sinks.
func (la *puLocal) assign(as *ast.AssignStmt) {
	// Multi-value call/type-assert: every LHS shares the RHS taint.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		if la.tainted(as.Rhs[0]) {
			for _, l := range as.Lhs {
				la.taintLHS(l, as.Rhs[0])
			}
		}
		return
	}
	for i, l := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		r := as.Rhs[i]
		t := la.tainted(r)
		if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
			as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
			t = t || la.tainted(l) // x += y keeps x's own taint too
		}
		if t {
			la.taintLHS(l, r)
		}
	}
}

// taintLHS marks the target of a tainted assignment: locals, the
// element container for index writes, struct fields program-wide —
// and reports sink-field writes.
func (la *puLocal) taintLHS(l ast.Expr, r ast.Expr) {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		la.addTaint(la.obj(x))
	case *ast.StarExpr:
		la.taintLHS(x.X, r)
	case *ast.IndexExpr:
		la.taintLHS(x.X, r)
	case *ast.SelectorExpr:
		if f := la.fieldOf(x); f != nil {
			if inv, isSink := pruneSinkFields[f.Name()]; isSink {
				la.sink(l.Pos(), "surrogate-predicted value assigned to %s.%s (%s); predictions must never look like measurements",
					fieldOwner(f), f.Name(), inv)
			}
			la.addFieldTaint(f)
			return
		}
		la.taintLHS(x.X, r)
	}
}

// checkCallSinks flags tainted arguments flowing into cache stores or
// into callees whose summary says the parameter reaches a sink.
func (la *puLocal) checkCallSinks(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if name == "Store" || name == "Put" {
			recv := lockNamedBase(la.fi.Pkg.Info, sel.X)
			if strings.Contains(recv, "Cache") {
				for _, a := range call.Args {
					if la.tainted(a) {
						la.sink(call.Pos(), "surrogate-predicted value stored into %s.%s (evaluation cache); pruned predictions must never be cached", recv, name)
						break
					}
				}
			}
		}
	}
	fn := StaticCallee(la.fi.Pkg, call)
	if fn == nil {
		return
	}
	if sinks := la.st.paramSink[fn]; sinks != nil {
		for i, a := range call.Args {
			if desc, ok := sinks[i]; ok && desc != "" && la.tainted(a) {
				la.sink(call.Pos(), "surrogate-predicted value passed to %s, whose parameter %d flows into %s", fn.Name(), i, desc)
			}
		}
	}
}

// sink records a sink hit: a finding in the reporting pass, a summary
// in the per-parameter pass.
func (la *puLocal) sink(pos token.Pos, format string, args ...any) {
	if la.reportPass {
		la.st.pp.Reportf(pos, format, args...)
		return
	}
	if la.sinkDesc == "" {
		// The summary only needs the sink's identity, not the sentence.
		s := fmt.Sprintf(format, args...)
		if i := strings.Index(s, ";"); i >= 0 {
			s = s[:i]
		}
		la.sinkDesc = strings.TrimPrefix(s, "surrogate-predicted value ")
	}
}

// fieldOwner names the struct type a field belongs to, for messages.
func fieldOwner(f *types.Var) string {
	// The field's parent scope is not exposed; fall back to the
	// package-qualified name when available.
	if f.Pkg() != nil {
		return f.Pkg().Name()
	}
	return "?"
}

package analysis

import (
	"fmt"
	"go/types"
	"io"
	"sort"
)

// FactStore holds analyzer-computed facts about program objects,
// keyed by (function, fact name). Facts are how the interprocedural
// analyzers summarise a function once and consume the summary from
// every caller: allocfree records why a callee allocates, lockorder
// records which callees perform operations forbidden under a shard
// lock, prunepurity records which results carry predicted values and
// which parameters flow into measurement sinks.
//
// Values are strings: human-readable at -facts dump granularity,
// parsed trivially by the analyzers that wrote them.
type FactStore struct {
	m map[*types.Func]map[string]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[*types.Func]map[string]string)}
}

// Set records fact name=value for fn, overwriting any previous value.
func (fs *FactStore) Set(fn *types.Func, name, value string) {
	facts := fs.m[fn]
	if facts == nil {
		facts = make(map[string]string)
		fs.m[fn] = facts
	}
	facts[name] = value
}

// Get returns the value of fact name for fn.
func (fs *FactStore) Get(fn *types.Func, name string) (string, bool) {
	v, ok := fs.m[fn][name]
	return v, ok
}

// Has reports whether fn carries fact name.
func (fs *FactStore) Has(fn *types.Func, name string) bool {
	_, ok := fs.Get(fn, name)
	return ok
}

// Dump writes every fact as "function\tfact\tvalue" lines, sorted by
// function full name then fact name, so -facts output is stable.
func (fs *FactStore) Dump(w io.Writer) {
	fns := make([]*types.Func, 0, len(fs.m))
	for fn := range fs.m {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		names := make([]string, 0, len(fs.m[fn]))
		for name := range fs.m[fn] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%s\t%s\t%s\n", fn.FullName(), name, fs.m[fn][name])
		}
	}
}

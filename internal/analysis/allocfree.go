package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocfreeAnalyzer proves the zero-alloc hot paths stay zero-alloc.
// A function annotated
//
//	//harmonyvet:allocfree
//
// must be transitively free of heap allocation: no make/new, no slice
// or map literals, no &composite escaping, no growing append, no
// interface boxing, no closure captures, no string↔[]byte
// conversions, no goroutine launches, and no calls the analyzer
// cannot see into (func values, interface methods, stdlib outside a
// small pure allowlist). The check descends into every module callee
// with source, so an allocation introduced three calls deep in a
// refactor is caught at its site, attributed to the annotated root.
//
// Two escape hatches, both demanding a written reason:
//
//	//harmonyvet:allocamortized <reason>  — the function's own sites
//	    are warm-up or grow-on-demand allocations (pooled free lists,
//	    high-water-mark buffers); its callees are still checked.
//	//harmonyvet:coldpath <reason>        — death/error path (deadlock
//	    reports); not descended into at all.
//
// Arguments of panic(...) are exempt everywhere: a panic is the end
// of the simulated world, so formatting its message may allocate.
var allocfreeAnalyzer = &Analyzer{
	Name:       "allocfree",
	Doc:        "//harmonyvet:allocfree functions must be transitively heap-allocation-free",
	Applies:    everywhere,
	RunProgram: runAllocfree,
}

// allocfreeStdlib lists stdlib packages whose exported functions are
// accepted as allocation-free (pure numeric code).
var allocfreeStdlib = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func runAllocfree(pp *ProgramPass) {
	var roots []*FuncInfo
	for _, pkg := range pp.Packages() {
		for _, fi := range pp.Prog.funcsIn(pkg) {
			if fi.Directive(dirAllocfree) {
				roots = append(roots, fi)
			}
		}
	}
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		v := &allocfreeScan{
			pp:       pp,
			root:     root,
			visited:  make(map[*types.Func]bool),
			reported: reported,
		}
		v.checkFunc(root, root.Fn.Name())
	}
}

// allocfreeScan walks one annotated root and its transitive module
// callees. Findings are deduplicated across roots by site, so one
// shared helper reached from several annotated functions produces one
// finding (and needs one suppression).
type allocfreeScan struct {
	pp       *ProgramPass
	root     *FuncInfo
	visited  map[*types.Func]bool
	reported map[token.Pos]bool
}

func (v *allocfreeScan) site(pos token.Pos, amortized bool, path, format string, args ...any) {
	if amortized || v.reported[pos] {
		return
	}
	v.reported[pos] = true
	v.pp.Reportf(pos, "%s on the allocation-free path of %s (%s)",
		fmt.Sprintf(format, args...), v.root.Fn.Name(), path)
}

func (v *allocfreeScan) checkFunc(fi *FuncInfo, path string) {
	if v.visited[fi.Fn] {
		return
	}
	v.visited[fi.Fn] = true
	if fi.Decl.Body == nil {
		return
	}
	v.walk(fi, fi.Decl.Body, path, fi.Directive(dirAllocamortized))
}

// walk inspects one function body (or function-literal body) for
// allocation sites, recursing into module callees.
func (v *allocfreeScan) walk(fi *FuncInfo, body ast.Node, path string, amortized bool) {
	info := fi.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(info, x, "panic") {
				return false // death path: panic message construction is exempt
			}
			v.call(fi, x, path, amortized)
		case *ast.CompositeLit:
			switch typeOf(info, x).Underlying().(type) {
			case *types.Slice:
				v.site(x.Pos(), amortized, path, "slice literal allocates")
			case *types.Map:
				v.site(x.Pos(), amortized, path, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					v.site(cl.Pos(), amortized, path, "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(typeOf(info, x)) {
				v.site(x.Pos(), amortized, path, "string concatenation allocates")
			}
		case *ast.FuncLit:
			if capturesOutside(fi.Pkg, x) {
				v.site(x.Pos(), amortized, path, "closure captures variables and may allocate its environment")
			}
			// The literal may run on this path: keep walking its body.
		case *ast.GoStmt:
			v.site(x.Pos(), amortized, path, "go statement allocates a goroutine")
		}
		return true
	})
}

// call classifies one call expression: builtin, conversion, dynamic,
// module callee (descend), or foreign function (allowlist).
func (v *allocfreeScan) call(fi *FuncInfo, call *ast.CallExpr, path string, amortized bool) {
	info := fi.Pkg.Info

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				v.site(call.Pos(), amortized, path, "make allocates")
			case "new":
				v.site(call.Pos(), amortized, path, "new allocates")
			case "append":
				v.site(call.Pos(), amortized, path, "append may grow its backing array")
			}
			return
		}
	}

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		v.conversion(fi, call, tv.Type, path, amortized)
		return
	}

	fn := StaticCallee(fi.Pkg, call)
	if fn == nil {
		v.site(call.Pos(), amortized, path, "dynamic call (func value or interface method) cannot be proven allocation-free")
		return
	}
	v.checkBoxing(fi, call, fn, path, amortized)

	if callee := v.pp.Prog.FuncOf(fn); callee != nil {
		if callee.Directive(dirColdpath) || callee.Directive(dirAllocfree) {
			return // cold paths are out of scope; allocfree callees carry their own proof
		}
		v.checkFunc(callee, path+" → "+fn.Name())
		return
	}

	p := fn.Pkg()
	if p == nil {
		return
	}
	if allocfreeStdlib[p.Path()] {
		return
	}
	if p.Path() == "sort" && strings.HasPrefix(fn.Name(), "Search") {
		return // binary search over caller-owned data
	}
	v.site(call.Pos(), amortized, path, "calls %s.%s, which harmonyvet cannot prove allocation-free", p.Path(), fn.Name())
}

// conversion flags string↔[]byte/[]rune conversions and conversions
// that box a concrete value into an interface.
func (v *allocfreeScan) conversion(fi *FuncInfo, call *ast.CallExpr, target types.Type, path string, amortized bool) {
	if len(call.Args) != 1 {
		return
	}
	argT := typeOf(fi.Pkg.Info, call.Args[0])
	switch {
	case isByteOrRuneSlice(target) && isString(argT):
		v.site(call.Pos(), amortized, path, "string to %s conversion allocates", target)
	case isString(target) && isByteOrRuneSlice(argT):
		v.site(call.Pos(), amortized, path, "%s to string conversion allocates", argT)
	case types.IsInterface(target) && boxes(argT):
		v.site(call.Pos(), amortized, path, "conversion boxes %s into %s", argT, target)
	}
}

// checkBoxing flags concrete non-pointer arguments passed to
// interface parameters: the conversion allocates unless the compiler
// proves the box does not escape, which an invariant cannot rest on.
func (v *allocfreeScan) checkBoxing(fi *FuncInfo, call *ast.CallExpr, fn *types.Func, path string, amortized bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, not boxed per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		argT := typeOf(fi.Pkg.Info, arg)
		if boxes(argT) {
			v.site(arg.Pos(), amortized, path, "argument boxes %s into interface parameter of %s", argT, fn.Name())
		}
	}
}

// boxes reports whether converting a value of type t into an
// interface allocates: true for concrete non-word-sized kinds,
// false for pointers, channels, maps, funcs, interfaces, and nil.
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.Invalid {
			return false
		}
	}
	return true
}

// capturesOutside reports whether a function literal references
// variables declared outside itself (closure environment capture).
// Package-level objects are shared, not captured.
func capturesOutside(pkg *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == pkg.Types.Scope() || obj.Parent() == types.Universe {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if t := info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

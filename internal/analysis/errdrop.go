package analysis

import (
	"go/ast"
	"go/types"
)

// errdropAnalyzer flags statements that silently discard an error
// result in the protocol packages (proto, server, client): a dropped
// encode/decode/connection error there turns a detectable fault into
// a hung or corrupted tuning session, which is exactly what the
// fault-tolerance layer of PR 2 exists to prevent. An explicit
// `_ = f()` assignment is accepted as a deliberate, greppable
// acknowledgment; a bare call statement is not.
var errdropAnalyzer = &Analyzer{
	Name:    "errdrop",
	Doc:     "no silently discarded error results in the protocol packages",
	Applies: baseIn("proto", "server", "client"),
	Run: func(p *Pass) {
		report := func(call *ast.CallExpr, how string) {
			if callDropsError(p, call) {
				p.Reportf(call.Pos(), "%s from %s is discarded; handle it or assign it to _ explicitly",
					how, calleeText(call))
			}
		}
		p.inspect(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "error result")
				}
			case *ast.DeferStmt:
				report(n.Call, "error result of deferred call")
			case *ast.GoStmt:
				report(n.Call, "error result of goroutine call")
			}
			return true
		})
	},
}

// callDropsError reports whether the call returns an error among its
// results (all of which the surrounding statement discards).
func callDropsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	errorType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// calleeText names the call target for the diagnostic.
func calleeText(call *ast.CallExpr) string {
	if s := exprText(ast.Unparen(call.Fun)); s != "" {
		return s
	}
	return "call"
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file holds the interprocedural layer added for the allocfree,
// lockorder, and prunepurity analyzers: a whole-program view with a
// function index, directive parsing, a static call-graph builder, and
// a cross-package fact store. The per-package Pass API is untouched;
// analyzers that need cross-package reasoning set RunProgram instead
// of Run and receive a ProgramPass.

// Function-level directives. Unlike //harmonyvet:ignore (which
// suppresses one finding on one line), these change how the
// interprocedural analyzers treat the annotated function as a whole.
const (
	// dirAllocfree marks a function whose execution — including every
	// module function it transitively calls — must not allocate.
	// Enforced by the allocfree analyzer.
	dirAllocfree = "allocfree"
	// dirAllocamortized excuses the function's own allocation sites
	// (grow-on-demand buffers, pooled free lists, first-use setup) from
	// allocfree enforcement. Callees are still checked. The written
	// reason is mandatory.
	dirAllocamortized = "allocamortized"
	// dirColdpath marks a function as a death/error path (deadlock
	// reports, panic formatting) that allocfree does not descend into.
	// The written reason is mandatory.
	dirColdpath = "coldpath"
)

// funcDirectives are the verbs accepted on function declarations.
var funcDirectives = map[string]bool{
	dirAllocfree:      true,
	dirAllocamortized: true,
	dirColdpath:       true,
}

// FuncInfo is one function declaration of the program: its object,
// syntax, owning package, and parsed harmonyvet directives.
type FuncInfo struct {
	Fn         *types.Func
	Decl       *ast.FuncDecl
	Pkg        *Package
	Directives map[string]string // verb -> reason ("" for allocfree)

	callees []*types.Func // memoised static callees, in source order
	built   bool
}

// Directive reports whether the function carries the verb.
func (fi *FuncInfo) Directive(verb string) bool {
	_, ok := fi.Directives[verb]
	return ok
}

// Program is the cross-package view handed to RunProgram analyzers:
// the packages named by the run's patterns, every further module
// package the loader pulled in as a dependency, a function index with
// parsed directives, and the shared fact store.
type Program struct {
	// Pkgs are the pattern packages — the set the user asked to vet.
	// Program analyzers report findings rooted in these (descent may
	// surface a finding in a dependency, attributed to the root).
	Pkgs []*Package
	// Fset is the shared file set.
	Fset *token.FileSet

	all   map[string]*Package // every known module package by path
	funcs map[*types.Func]*FuncInfo
	facts *FactStore
}

// buildProgram indexes the pattern packages plus every module package
// their loaders have cached (dependencies were loaded from source to
// type-check the patterns, so their syntax is already in memory).
func buildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		all:   make(map[string]*Package),
		funcs: make(map[*types.Func]*FuncInfo),
		facts: NewFactStore(),
	}
	for _, pkg := range pkgs {
		if prog.Fset == nil {
			prog.Fset = pkg.Fset
		}
		prog.all[pkg.Path] = pkg
		if pkg.loader != nil {
			for _, dep := range pkg.loader.Cached() {
				if _, ok := prog.all[dep.Path]; !ok {
					prog.all[dep.Path] = dep
				}
			}
		}
	}
	for _, pkg := range prog.allPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.funcs[obj] = &FuncInfo{
					Fn:         obj,
					Decl:       fd,
					Pkg:        pkg,
					Directives: parseFuncDirectives(fd),
				}
			}
		}
	}
	return prog
}

// allPackages returns every indexed package, sorted by import path
// for deterministic iteration.
func (prog *Program) allPackages() []*Package {
	paths := make([]string, 0, len(prog.all))
	for path := range prog.all {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, prog.all[path])
	}
	return out
}

// FuncOf returns the declaration info of a function object, or nil
// when the function has no source in the program (stdlib, interface
// methods, func-typed values).
func (prog *Program) FuncOf(fn *types.Func) *FuncInfo {
	return prog.funcs[fn]
}

// Facts returns the program's shared fact store.
func (prog *Program) Facts() *FactStore { return prog.facts }

// parseFuncDirectives extracts function-level harmonyvet verbs from a
// declaration's doc comment. Reason validation happens during
// suppression collection (collectSuppressions), which sees every
// comment; here a missing reason simply parses as an empty string.
func parseFuncDirectives(fd *ast.FuncDecl) map[string]string {
	if fd.Doc == nil {
		return nil
	}
	var dirs map[string]string
	for _, c := range fd.Doc.List {
		verb, rest, ok := parseDirective(c.Text)
		if !ok || !funcDirectives[verb] {
			continue
		}
		if dirs == nil {
			dirs = make(map[string]string)
		}
		dirs[verb] = rest
	}
	return dirs
}

// parseDirective splits a comment of the form "//harmonyvet:<verb>
// <rest>" into its verb and trailing text.
func parseDirective(comment string) (verb, rest string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
	if !strings.HasPrefix(text, "harmonyvet:") {
		return "", "", false
	}
	text = strings.TrimPrefix(text, "harmonyvet:")
	verb, rest, _ = strings.Cut(text, " ")
	return verb, strings.TrimSpace(rest), true
}

// Callees returns the static callees of a function in source order:
// every call whose callee resolves through Info.Uses to a concrete
// *types.Func (package functions, methods on concrete receivers).
// Calls through func values and interface methods are dynamic and do
// not appear; analyzers that care inspect the syntax themselves.
func (prog *Program) Callees(fi *FuncInfo) []*types.Func {
	if fi.built {
		return fi.callees
	}
	fi.built = true
	if fi.Decl.Body == nil {
		return nil
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := StaticCallee(fi.Pkg, call); fn != nil {
			fi.callees = append(fi.callees, fn)
		}
		return true
	})
	return fi.callees
}

// StaticCallee resolves a call expression to its concrete callee, or
// nil for dynamic calls (func values, interface methods) and builtins.
func StaticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// An interface method resolves to a *types.Func too; reject it
		// so only concrete targets count as static.
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// ProgramPass carries one (analyzer, program) run.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	findings []Finding
}

// Reportf records a finding at pos.
func (pp *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	pp.findings = append(pp.findings, Finding{
		Pos:      pp.Prog.Fset.Position(pos),
		Analyzer: pp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Packages returns the pattern packages the analyzer applies to —
// the roots a program analyzer scans (descent beyond them is the
// analyzer's own business).
func (pp *ProgramPass) Packages() []*Package {
	var out []*Package
	for _, pkg := range pp.Prog.Pkgs {
		if pp.Analyzer.Applies == nil || pp.Analyzer.Applies(pkg.Path) {
			out = append(out, pkg)
		}
	}
	return out
}

// FactPackages returns every indexed package the analyzer applies to,
// pattern or dependency — the set fact computation runs over, so
// cross-package facts (a taint summary in internal/core consumed from
// internal/server) exist even when only one of the packages is being
// reported on.
func (pp *ProgramPass) FactPackages() []*Package {
	var out []*Package
	for _, pkg := range pp.Prog.allPackages() {
		if pp.Analyzer.Applies == nil || pp.Analyzer.Applies(pkg.Path) {
			out = append(out, pkg)
		}
	}
	return out
}

// funcsIn returns the program's function infos declared in pkg, in
// source order.
func (prog *Program) funcsIn(pkg *Package) []*FuncInfo {
	var fns []*types.Func
	for fn := range prog.funcs {
		if prog.funcs[fn].Pkg == pkg {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		return prog.funcs[fns[i]].Decl.Pos() < prog.funcs[fns[j]].Decl.Pos()
	})
	out := make([]*FuncInfo, 0, len(fns))
	for _, fn := range fns {
		out = append(out, prog.funcs[fn])
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time functions that read or depend
// on the real clock. Pure constructors and conversions (time.Duration
// arithmetic, time.Unix, time.Date) are allowed — they do not couple
// the simulation to wall time.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// wallclockAnalyzer enforces the virtual-time discipline: simulator
// packages advance time only through the World clock (Rank.Compute,
// Rank.Sleep, message costs), never through the machine's wall clock.
// A single time.Now in a cost model would make every campaign
// fingerprint irreproducible. The on-line protocol packages (server,
// client) legitimately deal in wall time, but through an injectable
// Clock — they are exempt here.
var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "no wall-clock reads (time.Now/Since/Sleep/...) in virtual-time packages",
	Applies: baseIn(
		"simmpi", "cluster", "sparse", "pop", "gs2", "petscsim", "ksp", "snes",
	),
	Run: func(p *Pass) {
		p.inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleePkgFunc(p, call, "time"); fn != nil && wallclockFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "time.%s reads the wall clock in a virtual-time package; derive time from the simulated World clock", fn.Name())
			}
			return true
		})
	},
}

// calleePkgFunc resolves a call to a package-level function of the
// package with the given import path, or nil. Method calls (which
// have a receiver) never match.
func calleePkgFunc(p *Pass, call *ast.CallExpr, pkgPath string) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// Package analysis implements harmonyvet: a repo-specific static
// analysis suite built purely on the standard library's go/ast,
// go/parser, go/types, and go/importer.
//
// The analyzers encode invariants the compiler cannot see but the
// reproduction depends on: virtual-time packages must never read the
// wall clock, float accumulation and message schedules must not
// depend on Go's randomised map iteration order, search randomness
// must flow from injected seeded *rand.Rand values, mutexes must not
// be held across early returns or copied by value, and errors on the
// protocol's encode/decode/connection paths must not be silently
// dropped. See DESIGN.md ("Static analysis") for the rationale of
// each analyzer and the suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("harmony/internal/simmpi").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the loader's shared file set (positions).
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the type-checker's results.
	Types *types.Package
	Info  *types.Info

	// loader is the Loader that produced the package, so the
	// interprocedural Program can reach the module dependencies the
	// loader already parsed and type-checked.
	loader *Loader
}

// Loader loads and type-checks packages of one module from source.
// Module-internal imports are resolved by parsing the imported
// directory; everything else (the standard library) goes through the
// stdlib source importer.
type Loader struct {
	fset   *token.FileSet
	root   string // module root directory (holds go.mod)
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package // memoised module packages by import path
}

func init() {
	// The stdlib source importer resolves files through go/build's
	// default context. Disable cgo so packages like net select their
	// pure-Go variants; type-checking cgo-processed sources would need
	// a C toolchain the analysis must not depend on.
	build.Default.CgoEnabled = false
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader creates a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		root:   root,
		module: string(m[1]),
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path.
func (l *Loader) Module() string { return l.module }

// Import resolves an import path during type-checking: module
// packages load from source in the module tree, the rest delegates to
// the stdlib source importer. Import makes *Loader a types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads (memoised) the module package with the given import
// path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	pkg, err := l.LoadDir(filepath.Join(l.root, filepath.FromSlash(rel)))
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the non-test Go files of one
// directory. The package's import path is derived from its location
// in the module tree, so fixture packages under testdata get paths
// like "harmony/internal/analysis/testdata/src/simmpi" — analyzers
// that select packages by final path element apply to them exactly as
// they would to the real package.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.root)
	}
	path := l.module
	if rel != "." {
		path = l.module + "/" + filepath.ToSlash(rel)
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	pkg := &Package{Path: path, Dir: abs, Fset: l.fset, Files: files, Types: tpkg, Info: info, loader: l}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Cached returns every module package the loader has loaded so far —
// the pattern packages plus all module dependencies pulled in during
// type-checking — sorted by import path.
func (l *Loader) Cached() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkgs = append(pkgs, l.pkgs[p])
	}
	return pkgs
}

// Load expands the given patterns into packages. A pattern is either
// a directory path (absolute or relative to the module root, "./x"
// style accepted) or "dir/..." which walks dir recursively, skipping
// testdata, hidden directories, and directories without Go files.
// The default pattern "./..." loads the whole module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.root, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
